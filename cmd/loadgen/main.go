// Command loadgen drives open-loop HTTP traffic against a running
// cuisined daemon and records per-endpoint latency and throughput as a
// cuisines-bench/v1 report (the same format benchjson emits), so load
// evidence can be committed next to the code (BENCH_8.json) and
// validated in CI with `benchjson -check`.
//
// Open-loop means requests launch on a fixed clock regardless of how
// fast responses come back — the arrival process models independent
// users, so a slow server accumulates concurrent requests instead of
// silently throttling the generator (the coordinated-omission trap of
// closed-loop load tools). The endpoint mix is a deterministic smooth
// weighted round-robin over -mix; no randomness, so two runs against
// equal daemons issue the identical request sequence.
//
// Usage:
//
//	loadgen -duration 30s -rate 100 -o BENCH_8.json -label load
//	loadgen -base http://localhost:8372 -mix 'table:4,fingerprint:2,closest:1'
//	loadgen -mix '/v1/claims:1' -duration 5s       # raw paths pass through
//
// Named endpoints resolve to API paths; fingerprint, patterns and
// closest cycle through the daemon's region list (fetched once up
// front, which also warms the analysis so the measured window exercises
// the cache-hit serving path — pass -no-warm to skip and measure cold).
//
// -base (alias -addr) accepts a comma-separated target list to drive a
// cluster: requests spread over the targets with the same smooth
// weighted round-robin used for the endpoint mix, so two runs against
// equal fleets issue the identical (endpoint, node) sequence. -local
// sets the single-hop header on every request, pinning each node to
// serve locally instead of proxying to the ring owner — the mode that
// exercises the peer artifact exchange (and what BENCH_9.json's
// cluster-warm/cluster-cold comparison measures).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cuisines/internal/benchfmt"
	"cuisines/internal/server"
)

// endpoint is one weighted traffic class. path yields the request path
// for the class's i-th request (region-cycling endpoints vary by i).
type endpoint struct {
	name    string
	weight  int
	current int // smooth-WRR state
	sent    int
	path    func(i int) string
	// revalCarry accumulates the -revalidate fraction: each time it
	// crosses 1 the next request carries If-None-Match. A deterministic
	// carry, not a coin flip — two runs issue identical conditional
	// sequences.
	revalCarry float64
}

// target is one daemon base URL in the (possibly single-element)
// cluster target list, rotated by the same smooth WRR as endpoints —
// all targets weigh 1, so traffic spreads evenly and deterministically.
type target struct {
	base    string
	current int // smooth-WRR state
}

// nextTarget rotates the target list (equal-weight smooth WRR).
func nextTarget(ts []*target) *target {
	var best *target
	for _, t := range ts {
		t.current++
		if best == nil || t.current > best.current {
			best = t
		}
	}
	best.current -= len(ts)
	return best
}

// sample is one completed request.
type sample struct {
	endpoint string
	code     int // 0 on transport error
	latency  time.Duration
	bytes    int64 // response body bytes as they crossed the wire
}

// tally aggregates one endpoint's samples. ok counts 2xx plus 304 —
// a revalidation answered Not Modified is a successful (and cheap)
// request, tracked separately in notModified.
type tally struct {
	sent        int
	ok          int
	rejected    int // 429
	errors      int // transport errors and 5xx
	other       int // remaining non-2xx (4xx besides 429)
	notModified int // 304 answers (subset of ok)
	bytes       int64
	okLatency   []time.Duration
}

// etagStore remembers the last validator seen per URL so later requests
// can revalidate. Concurrent response goroutines write it; the launcher
// reads it.
type etagStore struct {
	mu sync.Mutex
	m  map[string]string
}

func (s *etagStore) get(url string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[url]
}

func (s *etagStore) put(url, etag string) {
	if etag == "" {
		return
	}
	s.mu.Lock()
	s.m[url] = etag
	s.mu.Unlock()
}

func main() {
	var base string
	flag.StringVar(&base, "base", "http://localhost:8372", "daemon base URL, or a comma-separated list to spread load over a cluster")
	flag.StringVar(&base, "addr", "http://localhost:8372", "alias for -base")
	var (
		duration = flag.Duration("duration", 30*time.Second, "measurement window")
		rate     = flag.Float64("rate", 50, "request launch rate per second (open loop)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		mix      = flag.String("mix", "table:4,stats:2,fingerprint:2,patterns:1,closest:1,newick:1,cachestats:1,healthz:1",
			"comma-separated endpoint:weight traffic mix; names or raw /paths")
		label  = flag.String("label", "load", "label for the recorded run")
		out    = flag.String("o", "", "append the run to this benchjson file (empty = summary only)")
		noWarm = flag.Bool("no-warm", false, "skip the warmup fetch; region-cycling endpoints then require a warm daemon")
		local  = flag.Bool("local", false, "set the single-hop header so each node serves locally instead of proxying to the ring owner")
		gz     = flag.Bool("gzip", false, "send Accept-Encoding: gzip and count compressed wire bytes")
		reval  = flag.Float64("revalidate", 0, "fraction of each endpoint's requests sent conditionally (If-None-Match from the last seen ETag); 304s count as successes")
	)
	flag.Parse()
	if *reval < 0 || *reval > 1 {
		fatal(fmt.Errorf("revalidate must be in [0, 1]"))
	}

	var targets []*target
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			targets = append(targets, &target{base: b})
		}
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("empty -base target list"))
	}

	hc := &http.Client{Timeout: *timeout}
	regions, err := fetchRegions(hc, targets[0].base, *noWarm, *local)
	if err != nil {
		fatal(err)
	}
	eps, err := parseMix(*mix, regions)
	if err != nil {
		fatal(err)
	}
	if *rate <= 0 {
		fatal(fmt.Errorf("rate must be positive"))
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d target(s) starting %s for %v at %.0f req/s (%d endpoint classes)\n",
		len(targets), targets[0].base, *duration, *rate, len(eps))
	tallies := run(hc, targets, eps, *rate, *duration, reqOptions{local: *local, gzip: *gz, revalidate: *reval})

	results, err := report(eps, tallies, *duration)
	if err != nil {
		fatal(err)
	}
	printSummary(os.Stderr, eps, tallies, *duration)

	if *out != "" {
		benchRun := benchfmt.Run{
			Label:     *label,
			Go:        runtime.Version(),
			Date:      time.Now().UTC().Format("2006-01-02"),
			Benchtime: duration.String(),
			Results:   results,
		}
		if err := benchfmt.MergeRun(*out, benchRun); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d results under label %q\n", *out, len(results), *label)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}

// reqOptions are the per-run request knobs.
type reqOptions struct {
	local      bool
	gzip       bool
	revalidate float64
}

// get issues one GET, optionally pinned to local serving via the
// single-hop header (see server.HopHeader). A non-empty etag makes the
// request conditional; gz negotiates compression explicitly (disabling
// the transport's transparent mode, so body counts are wire bytes).
func get(hc *http.Client, url string, local, gz bool, etag string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if local {
		req.Header.Set(server.HopHeader, "1")
	}
	if gz {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	return hc.Do(req)
}

// fetchRegions pulls /v1/table once: it returns the region names the
// cycling endpoints interpolate, and as a side effect warms the
// daemon's default analysis so the measured window hits the serving
// path, not one giant cold pipeline run. Against a cluster only the
// first target is warmed — the others warm through the peer exchange.
func fetchRegions(hc *http.Client, base string, skip, local bool) ([]string, error) {
	if skip {
		return nil, nil
	}
	resp, err := get(hc, base+"/v1/table", local, false, "")
	if err != nil {
		return nil, fmt.Errorf("warmup fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("warmup fetch: daemon answered %s", resp.Status)
	}
	var table struct {
		Rows []struct {
			Region string `json:"region"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		return nil, fmt.Errorf("warmup fetch: %w", err)
	}
	regions := make([]string, 0, len(table.Rows))
	for _, r := range table.Rows {
		regions = append(regions, r.Region)
	}
	return regions, nil
}

// parseMix builds the weighted endpoint set from "name:weight" pairs.
// Known names map to API paths; anything starting with '/' is issued
// verbatim.
func parseMix(mix string, regions []string) ([]*endpoint, error) {
	region := func(i int) string {
		return url.PathEscape(regions[i%len(regions)])
	}
	named := map[string]func(i int) string{
		"healthz":    fixed("/healthz"),
		"metrics":    fixed("/metrics"),
		"cachestats": fixed("/v1/cachestats"),
		"table":      fixed("/v1/table"),
		"stats":      fixed("/v1/stats"),
		"claims":     fixed("/v1/claims"),
		"map":        fixed("/v1/map"),
		"newick":     fixed("/v1/newick/fig5-authenticity"),
		"dendrogram": fixed("/v1/dendrogram/fig2-euclidean"),
		"fingerprint": func(i int) string {
			return "/v1/fingerprint/" + region(i)
		},
		"patterns": func(i int) string {
			return "/v1/patterns/" + region(i)
		},
		"closest": func(i int) string {
			return "/v1/closest/fig6-geographic?region=" + url.QueryEscape(regions[i%len(regions)])
		},
	}
	needsRegions := map[string]bool{"fingerprint": true, "patterns": true, "closest": true}

	var eps []*endpoint
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name:weight", part)
		}
		weight, err := strconv.Atoi(weightStr)
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", part)
		}
		pathFn := named[name]
		if pathFn == nil {
			if !strings.HasPrefix(name, "/") {
				return nil, fmt.Errorf("mix entry %q: unknown endpoint (or use a raw /path)", part)
			}
			pathFn = fixed(name)
		}
		if needsRegions[name] && len(regions) == 0 {
			return nil, fmt.Errorf("mix entry %q needs the region list; run without -no-warm", part)
		}
		eps = append(eps, &endpoint{name: name, weight: weight, path: pathFn})
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("empty traffic mix")
	}
	return eps, nil
}

func fixed(path string) func(int) string {
	return func(int) string { return path }
}

// next picks the upcoming traffic class by smooth weighted round-robin:
// deterministic, and interleaves classes as evenly as their weights
// allow (a 4:1 mix issues ABABABAB-ish, not AAAAB).
func next(eps []*endpoint) *endpoint {
	total := 0
	var best *endpoint
	for _, e := range eps {
		e.current += e.weight
		total += e.weight
		if best == nil || e.current > best.current {
			best = e
		}
	}
	best.current -= total
	return best
}

// run launches requests on a fixed clock until the window closes, then
// waits for stragglers and returns per-endpoint tallies. Each request
// goes to the next target in WRR order.
func run(hc *http.Client, targets []*target, eps []*endpoint, rate float64, window time.Duration, opts reqOptions) map[string]*tally {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.NewTimer(window)
	defer stop.Stop()

	samples := make(chan sample, 1024)
	tallies := make(map[string]*tally)
	for _, e := range eps {
		tallies[e.name] = &tally{}
	}
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		for s := range samples {
			t := tallies[s.endpoint]
			t.sent++
			t.bytes += s.bytes
			switch {
			case s.code == 0:
				t.errors++
			case s.code >= 200 && s.code < 300:
				t.ok++
				t.okLatency = append(t.okLatency, s.latency)
			case s.code == http.StatusNotModified:
				t.ok++
				t.notModified++
				t.okLatency = append(t.okLatency, s.latency)
			case s.code == http.StatusTooManyRequests:
				t.rejected++
			case s.code >= 500:
				t.errors++
			default:
				t.other++
			}
		}
	}()

	etags := &etagStore{m: make(map[string]string)}
	var inflight sync.WaitGroup
loop:
	for {
		select {
		case <-stop.C:
			break loop
		case <-ticker.C:
			e := next(eps)
			p := e.path(e.sent)
			e.sent++
			base := nextTarget(targets).base
			url := base + p
			// Decide conditionality in the launcher (single goroutine),
			// keeping the conditional sequence deterministic; a slot is
			// consumed only when a validator for the URL exists yet.
			etag := ""
			if opts.revalidate > 0 {
				e.revalCarry += opts.revalidate
				if e.revalCarry >= 1 {
					if etag = etags.get(url); etag != "" {
						e.revalCarry--
					}
				}
			}
			inflight.Add(1)
			go func(name, url, etag string) {
				defer inflight.Done()
				start := time.Now()
				code := 0
				var n int64
				resp, err := get(hc, url, opts.local, opts.gzip, etag)
				if err == nil {
					n, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
					if code == http.StatusOK {
						etags.put(url, resp.Header.Get("ETag"))
					}
				}
				samples <- sample{endpoint: name, code: code, latency: time.Since(start), bytes: n}
			}(e.name, url, etag)
		}
	}
	inflight.Wait()
	close(samples)
	collect.Wait()
	return tallies
}

// report converts tallies into benchfmt results: mean successful
// latency as ns/op, percentiles and error counts as custom metrics. An
// endpoint class with zero successes is a failed run — the report
// format requires positive ns/op, and a load test where an endpoint
// never succeeded measured nothing.
func report(eps []*endpoint, tallies map[string]*tally, window time.Duration) ([]benchfmt.Result, error) {
	var results []benchfmt.Result
	for _, e := range eps {
		t := tallies[e.name]
		if t.ok == 0 {
			return nil, fmt.Errorf("endpoint %s: %d requests, zero successes — nothing to report", e.name, t.sent)
		}
		sort.Slice(t.okLatency, func(i, j int) bool { return t.okLatency[i] < t.okLatency[j] })
		var sum time.Duration
		for _, d := range t.okLatency {
			sum += d
		}
		results = append(results, benchfmt.Result{
			Name:       "Load/" + strings.TrimPrefix(e.name, "/"),
			Iterations: int64(t.ok),
			NsPerOp:    float64(sum) / float64(t.ok),
			Metrics: map[string]float64{
				"p50_ms": ms(percentile(t.okLatency, 50)),
				"p90_ms": ms(percentile(t.okLatency, 90)),
				"p99_ms": ms(percentile(t.okLatency, 99)),
				// max makes a single cold compute visible next to an
				// otherwise-warm window — the cluster-cold vs cluster-warm
				// comparison in BENCH_9.json reads straight off it.
				"max_ms":   ms(t.okLatency[len(t.okLatency)-1]),
				"rps":      float64(t.ok) / window.Seconds(),
				"sent":     float64(t.sent),
				"http_429": float64(t.rejected),
				"http_304": float64(t.notModified),
				"errors":   float64(t.errors),
				// Body bytes as they crossed the wire, averaged over
				// successes: the number gzip and 304s exist to shrink.
				"bytes_per_op": float64(t.bytes) / float64(t.ok),
			},
		})
	}
	return results, nil
}

// percentile returns the p-th percentile of sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func printSummary(w io.Writer, eps []*endpoint, tallies map[string]*tally, window time.Duration) {
	for _, e := range eps {
		t := tallies[e.name]
		if t.ok == 0 {
			fmt.Fprintf(w, "  %-12s sent=%d ok=0 429=%d err=%d other=%d\n",
				e.name, t.sent, t.rejected, t.errors, t.other)
			continue
		}
		fmt.Fprintf(w, "  %-12s sent=%d ok=%d 304=%d 429=%d err=%d p50=%.1fms p99=%.1fms %.0fB/op %.1f req/s\n",
			e.name, t.sent, t.ok, t.notModified, t.rejected, t.errors,
			ms(percentile(t.okLatency, 50)), ms(percentile(t.okLatency, 99)),
			float64(t.bytes)/float64(t.ok), float64(t.ok)/window.Seconds())
	}
}
