// Command report runs the complete evaluation pipeline and writes a
// single self-contained Markdown report: Sec. III corpus statistics,
// the Table I reproduction, the Fig. 1 elbow analysis, all five
// dendrograms, and the quantified Sec. VII validation.
//
// Usage:
//
//	report [-scale 1.0] [-o report.md]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cuisines"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	var (
		scale = flag.Float64("scale", 1.0, "corpus scale")
		seed  = flag.Uint64("seed", 0, "corpus seed (0 = default)")
		out   = flag.String("o", "-", "output file ('-' for stdout)")
	)
	flag.Parse()

	a, err := cuisines.Run(cuisines.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer func() {
			if err := bw.Flush(); err != nil {
				log.Fatal(err)
			}
		}()
		w = bw
	}
	if err := write(w, a, *scale); err != nil {
		log.Fatal(err)
	}
}

func write(w io.Writer, a *cuisines.Analysis, scale float64) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("# Hierarchical Clustering of World Cuisines — experiment report\n\n")
	p("Corpus scale: %.2f\n\n", scale)

	st := a.Stats()
	p("## Corpus (Sec. III)\n\n```\n%s```\n\n", st.String())

	p("## Table I — significant patterns per cuisine\n\n```\n%s```\n\n", a.RenderTable())

	p("## Fig. 1 — elbow analysis\n\n```\n%s```\n\n", a.ElbowReport())

	for _, f := range []cuisines.Figure{
		cuisines.FigureEuclidean, cuisines.FigureCosine, cuisines.FigureJaccard,
		cuisines.FigureAuthenticity, cuisines.FigureGeographic,
	} {
		s, err := a.Dendrogram(f)
		if err != nil {
			return err
		}
		p("## %s\n\n```\n%s```\n\n", f, s)
	}

	p("## Sec. VII — validation against geography\n\n```\n%s```\n\n", a.RenderValidation())

	p("## Culinary fingerprints (top 5 per cuisine)\n\n")
	for _, region := range a.Regions() {
		fp, err := a.Fingerprint(region, 5)
		if err != nil {
			return err
		}
		p("- **%s**: ", region)
		for i, e := range fp.Most {
			if i > 0 {
				p(", ")
			}
			p("%s (%+.2f)", e.Item, e.Relative)
		}
		p("\n")
	}
	p("\n")
	return nil
}
