package cuisines

import (
	"reflect"
	"sync"
	"testing"
)

// TestClosestCuisineMemoized covers the per-request facade fix: repeated
// calls must return identical results while sharing one cophenetic
// matrix per figure instead of re-deriving O(n²) state every call.
func TestClosestCuisineMemoized(t *testing.T) {
	a := getAnalysis(t)
	for _, f := range AllFigures() {
		for _, region := range []string{"UK", "Japanese", "Thai"} {
			first, err := a.ClosestCuisine(f, region)
			if err != nil {
				t.Fatalf("%v/%s: %v", f, region, err)
			}
			for i := 0; i < 3; i++ {
				again, err := a.ClosestCuisine(f, region)
				if err != nil || again != first {
					t.Fatalf("%v/%s call %d: got %q (%v), first was %q", f, region, i, again, err, first)
				}
			}
		}
	}
}

// TestCuisineDistanceMatchesTree pins the memoized lookup to the
// previous implementation: the tree's own merge-height resolution.
func TestCuisineDistanceMatchesTree(t *testing.T) {
	a := getAnalysis(t)
	pairs := [][2]string{{"UK", "Irish"}, {"Japanese", "Korean"}, {"Thai", "Mexican"}, {"UK", "UK"}}
	for _, f := range AllFigures() {
		tr, err := a.tree(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			got, err := a.CuisineDistance(f, p[0], p[1])
			if err != nil {
				t.Fatalf("%v %v: %v", f, p, err)
			}
			want, err := tr.Tree.MergeHeightBetween(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v %v: memoized %v, tree says %v", f, p, got, want)
			}
			again, err := a.CuisineDistance(f, p[0], p[1])
			if err != nil || again != got {
				t.Fatalf("%v %v: second call %v (%v), first %v", f, p, again, err, got)
			}
		}
	}
}

func TestCuisineDistanceUnknownInputs(t *testing.T) {
	a := getAnalysis(t)
	if _, err := a.CuisineDistance(Figure(99), "UK", "Irish"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := a.CuisineDistance(FigureCosine, "Narnia", "Irish"); err == nil {
		t.Fatal("unknown first region accepted")
	}
	if _, err := a.CuisineDistance(FigureCosine, "Irish", "Narnia"); err == nil {
		t.Fatal("unknown second region accepted")
	}
	if _, err := a.ClosestCuisine(Figure(99), "UK"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestStatsMemoized asserts both value stability and that the second
// call reuses the first computation (the PerRegion slices share one
// backing array only if ComputeStats ran once).
func TestStatsMemoized(t *testing.T) {
	a := getAnalysis(t)
	st1 := a.Stats()
	st2 := a.Stats()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("stats changed between calls:\n%+v\n%+v", st1, st2)
	}
	if len(st1.PerRegion) == 0 || &st1.PerRegion[0] != &st2.PerRegion[0] {
		t.Fatal("Stats recomputed: PerRegion not shared between calls")
	}
}

// TestDerivedStateConcurrent hammers the memoized accessors from many
// goroutines; the race detector (CI runs -race) verifies the sync.Once
// guards.
func TestDerivedStateConcurrent(t *testing.T) {
	a := getAnalysis(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range AllFigures() {
				if _, err := a.ClosestCuisine(f, "Japanese"); err != nil {
					t.Error(err)
				}
				if _, err := a.CuisineDistance(f, "UK", "Thai"); err != nil {
					t.Error(err)
				}
			}
			if st := a.Stats(); st.Regions != 26 {
				t.Errorf("stats regions = %d", st.Regions)
			}
		}()
	}
	wg.Wait()
}

func TestParseFigure(t *testing.T) {
	cases := map[string]Figure{
		"fig2-euclidean":    FigureEuclidean,
		"fig2":              FigureEuclidean,
		"euclidean":         FigureEuclidean,
		"cosine":            FigureCosine,
		"jaccard":           FigureJaccard,
		"fig5-authenticity": FigureAuthenticity,
		"authenticity":      FigureAuthenticity,
		"fig6":              FigureGeographic,
		"geographic":        FigureGeographic,
	}
	for in, want := range cases {
		got, err := ParseFigure(in)
		if err != nil || got != want {
			t.Fatalf("ParseFigure(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "fig7", "fig", "manhattan", "fig2-cosine"} {
		if _, err := ParseFigure(in); err == nil {
			t.Fatalf("ParseFigure(%q) accepted", in)
		}
	}
}

func TestOptionsCanonical(t *testing.T) {
	canon, err := Options{}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Seed == 0 || canon.Scale != 1 || canon.MinSupport <= 0 || canon.Linkage != "average" {
		t.Fatalf("zero options canonicalized to %+v", canon)
	}
	// Aliases normalize to the same key.
	alias, err := Options{Linkage: "upgma"}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if alias.Linkage != "average" {
		t.Fatalf("upgma canonicalized to %q", alias.Linkage)
	}
	// Workers survives canonicalization (callers zero it for cache keys).
	w, err := Options{Workers: 7}.Canonical()
	if err != nil || w.Workers != 7 {
		t.Fatalf("workers lost: %+v (%v)", w, err)
	}
	if _, err := (Options{Linkage: "centroid"}).Canonical(); err == nil {
		t.Fatal("unknown linkage accepted")
	}
}
