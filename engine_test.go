package cuisines

import (
	"strings"
	"testing"

	"cuisines/internal/miner"
)

const engineTestScale = 0.05

// analysisSnapshot renders the acceptance surface: Table I, the five
// Newick strings, and the Sec. VII claims.
func analysisSnapshot(t *testing.T, a *Analysis) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(a.RenderTable())
	for _, f := range AllFigures() {
		nw, err := a.Newick(f)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(f.String() + "\n" + nw + "\n")
	}
	for _, c := range a.Claims() {
		b.WriteString(c.Name + " ")
		b.WriteString(c.Detail + " ")
		if c.Holds {
			b.WriteString("holds\n")
		} else {
			b.WriteString("fails\n")
		}
	}
	return b.String()
}

// TestEngineByteIdentityAcrossCacheStates: Table I, all five Newick
// strings and the claims are identical across cold, warm-memory and
// warm-disk executions, for Workers 1 and 8.
func TestEngineByteIdentityAcrossCacheStates(t *testing.T) {
	dir := t.TempDir()
	var want string
	for i, workers := range []int{1, 8} {
		opts := Options{Scale: engineTestScale, Workers: workers}

		e := NewEngine(EngineConfig{CacheDir: dir})
		cold, err := e.Run(opts) // cold for i==0, warm-disk for i==1
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = analysisSnapshot(t, cold)
		} else if got := analysisSnapshot(t, cold); got != want {
			t.Errorf("workers=%d warm-disk output differs from cold", workers)
		}

		warm, err := e.Run(opts) // warm-memory
		if err != nil {
			t.Fatal(err)
		}
		if got := analysisSnapshot(t, warm); got != want {
			t.Errorf("workers=%d warm-memory output differs from cold", workers)
		}
	}
}

// TestEngineLinkageOnlyChangeReusesStages mirrors the pipeline-level
// counting test at the facade: two Options differing only in Linkage
// share the corpus, mining and matrix artifacts.
func TestEngineLinkageOnlyChangeReusesStages(t *testing.T) {
	e := NewEngine(EngineConfig{})
	if _, err := e.Run(Options{Scale: engineTestScale, Linkage: "average"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Options{Scale: engineTestScale, Linkage: "ward"}); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	for _, kind := range []string{"corpus", "mine", "matrices"} {
		if got := st[kind].Computed; got != 1 {
			t.Errorf("%s computed %d times across a linkage-only change, want 1", kind, got)
		}
	}
}

// TestEngineMinerChangeReusesEverything: sweeping the mining backend on
// a warm engine is free — every backend produces byte-identical
// patterns, the miner never enters a stage key, so the only new work is
// cache lookups. The outputs must also be byte-identical end to end.
func TestEngineMinerChangeReusesEverything(t *testing.T) {
	e := NewEngine(EngineConfig{})
	first, err := e.Run(Options{Scale: engineTestScale, Miner: "fpgrowth"})
	if err != nil {
		t.Fatal(err)
	}
	want := analysisSnapshot(t, first)
	cold := uint64(0)
	for _, s := range e.CacheStats() {
		cold += s.Computed
	}
	for _, name := range append(miner.Names(), "", "fp") {
		a, err := e.Run(Options{Scale: engineTestScale, Miner: name})
		if err != nil {
			t.Fatalf("miner %q: %v", name, err)
		}
		if got := analysisSnapshot(t, a); got != want {
			t.Errorf("miner %q: output differs", name)
		}
	}
	total := uint64(0)
	for _, s := range e.CacheStats() {
		total += s.Computed
	}
	if total != cold {
		t.Errorf("miner sweep recomputed %d stage executions on a warm engine, want 0", total-cold)
	}
}

// TestOptionsCanonicalMiner pins the miner knob's canonicalization:
// spellings collapse to canonical names, the empty string selects the
// default backend, and unknown backends are rejected.
func TestOptionsCanonicalMiner(t *testing.T) {
	for in, want := range map[string]string{
		"":          miner.Default.Name(),
		"fp":        "fpgrowth",
		"FP-Growth": "fpgrowth",
		"Eclat":     "eclat",
		"apriori":   "apriori",
	} {
		canon, err := Options{Miner: in}.Canonical()
		if err != nil {
			t.Errorf("Canonical(miner=%q): %v", in, err)
			continue
		}
		if canon.Miner != want {
			t.Errorf("Canonical(miner=%q).Miner = %q, want %q", in, canon.Miner, want)
		}
	}
	if _, err := (Options{Miner: "bogus"}).Canonical(); err == nil {
		t.Error("unknown miner accepted by Canonical")
	}
}
