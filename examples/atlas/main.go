// Atlas: the complete cuisine atlas — every dendrogram of the paper
// (Figs. 2-6), the Fig. 1 elbow analysis, the quantified geography fit of
// each tree, and continental cluster cuts.
//
//	go run ./examples/atlas [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"cuisines"
)

func main() {
	scale := flag.Float64("scale", 0.25, "corpus scale (1.0 = the full 118k recipes)")
	flag.Parse()

	a, err := cuisines.Run(cuisines.Options{Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	st := a.Stats()
	fmt.Printf("Corpus: %d recipes, %d cuisines, %d ingredients / %d processes / %d utensils\n\n",
		st.Recipes, st.Regions, st.UniqueIngredients, st.UniqueProcesses, st.UniqueUtensils)

	for _, f := range []cuisines.Figure{
		cuisines.FigureEuclidean, cuisines.FigureCosine, cuisines.FigureJaccard,
		cuisines.FigureAuthenticity, cuisines.FigureGeographic,
	} {
		s, err := a.Dendrogram(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== " + f.String() + " ===")
		fmt.Println(s)
	}

	fmt.Println("=== Fig. 1: elbow analysis (K-means) ===")
	fmt.Println(a.ElbowReport())

	fmt.Println("=== Cuisine map: principal coordinates of authenticity ===")
	m, err := a.RenderCuisineMap(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)

	fmt.Println("=== Continental cut: authenticity tree at k=5 ===")
	groups, err := a.Clusters(cuisines.FigureAuthenticity, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range groups {
		fmt.Printf("  cluster %d: %v\n", i+1, g)
	}
	fmt.Println()

	fmt.Println("=== Sec. VII validation ===")
	fmt.Println(a.RenderValidation())
}
