// Fingerprint: compute a cuisine's culinary fingerprint — the most and
// least authentic ingredients under the Ahn et al. relative-prevalence
// metric (Sec. V.B) — plus its nearest cuisines under each tree.
//
//	go run ./examples/fingerprint [region]
//
// The default region is "Japanese"; pass any Table I region name.
package main

import (
	"fmt"
	"log"
	"os"

	"cuisines"
)

func main() {
	region := "Japanese"
	if len(os.Args) > 1 {
		region = os.Args[1]
	}

	a, err := cuisines.Run(cuisines.Options{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	fp, err := a.Fingerprint(region, 10)
	if err != nil {
		log.Fatalf("%v (known regions: %v)", err, a.Regions())
	}

	fmt.Printf("Culinary fingerprint of %s\n\n", region)
	fmt.Println("Most authentic (over-represented vs the world):")
	for _, e := range fp.Most {
		fmt.Printf("  %+0.3f  %-24s (used in %4.1f%% of its recipes)\n", e.Relative, e.Item, e.Prevalence*100)
	}
	fmt.Println("\nLeast authentic (conspicuously avoided):")
	for _, e := range fp.Least {
		fmt.Printf("  %+0.3f  %s\n", e.Relative, e.Item)
	}

	fmt.Println("\nNearest cuisines:")
	for _, f := range []cuisines.Figure{cuisines.FigureAuthenticity, cuisines.FigureEuclidean, cuisines.FigureGeographic} {
		closest, err := a.ClosestCuisine(f, region)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %s\n", f.String()+":", closest)
	}
}
