// Example daemon: serve an analysis over HTTP in-process and query it
// through the bundled client — the same wire format cmd/cuisined
// speaks, without needing a separately running daemon.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"cuisines"
	"cuisines/internal/server"
)

func main() {
	ts := httptest.NewServer(server.New(server.Config{
		Base: cuisines.Options{Scale: 0.1},
	}))
	defer ts.Close()

	c := cuisines.NewClient(ts.URL)
	ctx := context.Background()

	closest, dist, err := c.ClosestCuisine(ctx, cuisines.FigureGeographic, "UK")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Closest to UK (geographic tree): %s at %.0f km\n\n", closest, dist)

	fp, err := c.Fingerprint(ctx, "Japanese", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Most authentic in Japanese cuisine:")
	for _, e := range fp.Most {
		fmt.Printf("  %-14s relative %+0.2f\n", e.Item, e.Relative)
	}

	nw, err := c.Newick(ctx, cuisines.FigureAuthenticity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 5 Newick (first 60 bytes): %.60s...\n", nw)
}
