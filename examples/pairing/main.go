// Pairing: explore a cuisine's strongest ingredient pairings via
// association rules — the food-pairing lens (Jain et al. on Indian
// cuisine; Ahn et al.'s flavor network) that motivates the paper's
// pattern mining (Sec. II).
//
//	go run ./examples/pairing [region]
package main

import (
	"fmt"
	"log"
	"os"

	"cuisines"
)

func main() {
	region := "Indian Subcontinent"
	if len(os.Args) > 1 {
		region = os.Args[1]
	}

	a, err := cuisines.Run(cuisines.Options{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	rs, err := a.IngredientPairings(region, 0.6, 0)
	if err != nil {
		log.Fatalf("%v (known regions: %v)", err, a.Regions())
	}

	fmt.Printf("Strongest pairings in %s (rules with confidence >= 0.6, ranked by lift):\n\n", region)
	// Keep ingredient-to-ingredient rules with real pull (lift > 1.5).
	shown := 0
	for _, r := range rs {
		if r.Lift <= 1.5 {
			continue
		}
		marker := " "
		if r.IsPerfect() {
			marker = "*" // held in every supporting recipe
		}
		lhs := joinNames(r.Antecedent)
		rhs := joinNames(r.Consequent)
		fmt.Printf("%s %-55s supp %.2f  conf %.2f  lift %.1f\n",
			marker, lhs+" => "+rhs, r.Support, r.Confidence, r.Lift)
		shown++
		if shown >= 15 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (no high-lift rules at this threshold — try a lower confidence)")
	}
	fmt.Println("\n* = the rule held in every recipe containing its antecedent")
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " + "
		}
		out += n
	}
	return out
}
