// Quickstart: run the paper's full pipeline on a reduced corpus and print
// the headline artifacts — the Table I fragment, one dendrogram, and the
// validation verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cuisines"
)

func main() {
	// A quarter-scale corpus (about 30k recipes) reproduces all the
	// qualitative results in about a second.
	a, err := cuisines.Run(cuisines.Options{Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Table I: significant patterns per cuisine ===")
	fmt.Println(a.RenderTable())

	fmt.Println("=== Fig. 5: authenticity-based clustering ===")
	dendro, err := a.Dendrogram(cuisines.FigureAuthenticity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dendro)

	fmt.Println("=== Sec. VII: validation against geography ===")
	for _, c := range a.Claims() {
		status := "HOLDS"
		if !c.Holds {
			status = "fails"
		}
		fmt.Printf("  [%s] %s (%s)\n", status, c.Name, c.Tree)
	}
	fmt.Println("\n(The razor-thin metric comparisons can flip at reduced scale;")
	fmt.Println(" the full corpus reproduces all eight claims — see EXPERIMENTS.md")
	fmt.Println(" or run `go run ./cmd/evaltrees`.)")
}
