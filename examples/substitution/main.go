// Substitution: suggest ingredient replacements within a cuisine from
// pattern-context similarity — two ingredients are substitution
// candidates when they frequently combine with the same partners (the
// replaceable-ingredient idea of Shidochi et al., discussed in the
// paper's Sec. II, built on this repository's pattern miner).
//
//	go run ./examples/substitution [region [ingredient]]
package main

import (
	"fmt"
	"log"
	"os"

	"cuisines"
)

func main() {
	region := "Chinese and Mongolian"
	ingredient := "ginger"
	if len(os.Args) > 1 {
		region = os.Args[1]
	}
	if len(os.Args) > 2 {
		ingredient = os.Args[2]
	}

	a, err := cuisines.Run(cuisines.Options{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	subs, err := a.Substitutes(region, ingredient, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ingredients that appear in the same frequent combinations as %q in %s:\n\n", ingredient, region)
	for _, s := range subs {
		fmt.Printf("  %.2f  %s\n", s.Similarity, s.Ingredient)
	}

	fmt.Println("\nFrequent combinations anchoring the suggestion:")
	patterns, err := a.CuisinePatterns(region)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, p := range patterns {
		if len(p.Items) < 2 {
			continue
		}
		for _, it := range p.Items {
			if it == ingredient {
				fmt.Printf("  %v (support %.2f)\n", p.Items, p.Support)
				shown++
				break
			}
		}
		if shown >= 5 {
			break
		}
	}
}
