// Client tests live in an external test package: internal/server
// imports the root package, so an in-package test would be an import
// cycle. They exercise the full wire round trip — Client -> HTTP ->
// Server -> Analysis — against a real listener.
package cuisines_test

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cuisines"
	"cuisines/internal/miner"
	"cuisines/internal/server"
)

const clientTestScale = 0.02

var (
	refOnce     sync.Once
	refAnalysis *cuisines.Analysis
	refErr      error
)

// refLocal is the in-process reference the wire results must match.
func refLocal(t *testing.T) *cuisines.Analysis {
	t.Helper()
	refOnce.Do(func() {
		refAnalysis, refErr = cuisines.Run(cuisines.Options{Scale: clientTestScale})
	})
	if refErr != nil {
		t.Fatal(refErr)
	}
	return refAnalysis
}

func newTestDaemon(t *testing.T, workers int) (*httptest.Server, *cuisines.Client) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{
		Base: cuisines.Options{Scale: clientTestScale, Workers: workers},
	}))
	t.Cleanup(ts.Close)
	return ts, cuisines.NewClient(ts.URL)
}

// TestNewickByteIdentical is the acceptance check: the daemon's
// /v1/newick/{figure} bytes must equal Analysis.Newick exactly, for any
// -workers value.
func TestNewickByteIdentical(t *testing.T) {
	ref := refLocal(t)
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		_, c := newTestDaemon(t, workers)
		for _, f := range cuisines.AllFigures() {
			want, err := ref.Newick(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Newick(ctx, f)
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, f, err)
			}
			if got != want {
				t.Fatalf("workers=%d %v: wire newick differs\ngot:  %q\nwant: %q", workers, f, got, want)
			}
		}
	}
}

func TestClientRoundTrip(t *testing.T) {
	ref := refLocal(t)
	_, c := newTestDaemon(t, 0)
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}

	rows, err := c.Table(ctx)
	if err != nil {
		t.Fatal(err)
	}
	localRows := ref.Table()
	if len(rows) != len(localRows) {
		t.Fatalf("table rows = %d, local %d", len(rows), len(localRows))
	}
	for i := range rows {
		if rows[i].Region != localRows[i].Region || rows[i].Recipes != localRows[i].Recipes ||
			rows[i].Patterns != localRows[i].Patterns {
			t.Fatalf("row %d differs:\nwire:  %+v\nlocal: %+v", i, rows[i], localRows[i])
		}
	}

	d, err := c.Dendrogram(ctx, cuisines.FigureAuthenticity)
	if err != nil || !strings.Contains(d, "Japanese") {
		t.Fatalf("dendrogram: %v\n%s", err, d)
	}

	groups, err := c.Clusters(ctx, cuisines.FigureAuthenticity, 5)
	if err != nil || len(groups) != 5 {
		t.Fatalf("clusters: %d groups, %v", len(groups), err)
	}

	closest, dist, err := c.ClosestCuisine(ctx, cuisines.FigureGeographic, "UK")
	if err != nil || closest != "Irish" || dist <= 0 {
		t.Fatalf("closest: %q at %v (%v)", closest, dist, err)
	}
	wantDist, err := ref.CuisineDistance(cuisines.FigureGeographic, "UK", "Irish")
	if err != nil || dist != wantDist {
		t.Fatalf("closest distance %v, local %v (%v)", dist, wantDist, err)
	}

	fp, err := c.Fingerprint(ctx, "Japanese", 5)
	if err != nil || len(fp.Most) != 5 || len(fp.Least) != 5 {
		t.Fatalf("fingerprint: %+v, %v", fp, err)
	}

	ps, err := c.CuisinePatterns(ctx, "Japanese")
	if err != nil || len(ps) < 10 {
		t.Fatalf("patterns: %d, %v", len(ps), err)
	}

	rules, err := c.AssociationRules(ctx, "Japanese", 0.6, 10)
	if err != nil || len(rules) == 0 {
		t.Fatalf("rules: %d, %v", len(rules), err)
	}
	// Perfect rules must survive the wire: +Inf conviction has no JSON
	// representation and travels as "perfect": true.
	all, err := c.AssociationRules(ctx, "Japanese", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	foundPerfect := false
	for _, r := range all {
		if r.IsPerfect() {
			foundPerfect = true
			if !math.IsInf(r.Conviction, 1) {
				t.Fatalf("perfect rule lost its conviction: %+v", r)
			}
		}
	}
	localAll, err := ref.AssociationRules("Japanese", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	localPerfect := false
	for _, r := range localAll {
		localPerfect = localPerfect || r.IsPerfect()
	}
	if foundPerfect != localPerfect {
		t.Fatalf("perfect rules wire=%v local=%v", foundPerfect, localPerfect)
	}

	pair, err := c.Pairings(ctx, "Indian Subcontinent")
	if err != nil || pair.Pairing.Region != "Indian Subcontinent" {
		t.Fatalf("pairings: %+v, %v", pair, err)
	}

	subs, err := c.Substitutes(ctx, "Chinese and Mongolian", "ginger", 5)
	if err != nil || len(subs) == 0 {
		t.Fatalf("substitutes: %d, %v", len(subs), err)
	}

	m, err := c.CuisineMap(ctx)
	if err != nil || len(m.Points) != 26 {
		t.Fatalf("map: %d points, %v", len(m.Points), err)
	}

	claims, err := c.Claims(ctx)
	if err != nil || len(claims.Claims) != 8 || len(claims.Fits) != 4 {
		t.Fatalf("claims: %+v, %v", claims, err)
	}

	st, err := c.Stats(ctx)
	if err != nil || !reflect.DeepEqual(st.Stats, ref.Stats()) {
		t.Fatalf("stats differ:\nwire:  %+v\nlocal: %+v (%v)", st.Stats, ref.Stats(), err)
	}
	if want := miner.Default.Name(); st.Miner != want {
		t.Fatalf("stats echoed miner %q, want default %q", st.Miner, want)
	}
}

func TestClientErrorPropagation(t *testing.T) {
	_, c := newTestDaemon(t, 0)
	ctx := context.Background()
	if _, err := c.CuisinePatterns(ctx, "Narnia"); err == nil || !strings.Contains(err.Error(), "unknown region") {
		t.Fatalf("unknown region error: %v", err)
	}
	if _, err := c.Newick(ctx, cuisines.Figure(42)); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, _, err := c.ClosestCuisine(ctx, cuisines.FigureCosine, "Narnia"); err == nil {
		t.Fatal("unknown region accepted")
	}
}
