package cuisines

import (
	"strings"
	"testing"
)

func TestAssociationRules(t *testing.T) {
	a := getAnalysis(t)
	rs, err := a.AssociationRules("Chinese and Mongolian", 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules mined")
	}
	for i, r := range rs {
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("empty rule side: %+v", r)
		}
		if r.Confidence < 0.5-1e-12 || r.Confidence > 1 {
			t.Fatalf("confidence out of range: %+v", r)
		}
		if r.Support <= 0 || r.Lift <= 0 {
			t.Fatalf("degenerate measures: %+v", r)
		}
		if i > 0 && r.Confidence > rs[i-1].Confidence+1e-12 {
			t.Fatal("rules not sorted by confidence")
		}
	}
	// The planted bundle {ginger, garlic, green onion} must yield rules
	// among its members with high lift.
	found := false
	for _, r := range rs {
		s := r.String()
		if strings.Contains(s, "ginger") && strings.Contains(s, "garlic") && r.Lift > 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("expected a high-lift ginger/garlic rule")
	}
}

func TestAssociationRulesMaxRules(t *testing.T) {
	a := getAnalysis(t)
	rs, err := a.AssociationRules("Thai", 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) > 5 {
		t.Fatalf("cap ignored: %d rules", len(rs))
	}
}

func TestAssociationRulesUnknownRegion(t *testing.T) {
	a := getAnalysis(t)
	if _, err := a.AssociationRules("Narnia", 0.5, 0); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestAssociationRuleString(t *testing.T) {
	r := AssociationRule{
		Antecedent: []string{"soy sauce", "add"},
		Consequent: []string{"heat"},
		Confidence: 0.92,
		Lift:       2.1,
	}
	s := r.String()
	if !strings.Contains(s, "soy sauce + add => heat") {
		t.Fatalf("render: %q", s)
	}
}

func TestIngredientPairings(t *testing.T) {
	a := getAnalysis(t)
	rs, err := a.IngredientPairings("Indian Subcontinent", 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no ingredient pairings")
	}
	// No process names may appear (spot-check the universal ones).
	for _, r := range rs {
		for _, side := range [][]string{r.Antecedent, r.Consequent} {
			for _, item := range side {
				switch item {
				case "add", "heat", "cook", "stir", "mix", "bake", "preheat":
					t.Fatalf("process %q in ingredient pairing %v", item, r)
				}
			}
		}
	}
}
