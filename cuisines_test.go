package cuisines

import (
	"bytes"
	"strings"
	"testing"

	"cuisines/internal/recipedb"
)

// analysisFixture is shared across the facade tests (a tenth-scale corpus
// keeps the suite fast while preserving every qualitative behaviour the
// facade exposes).
var analysisFixture *Analysis

func getAnalysis(t *testing.T) *Analysis {
	t.Helper()
	if analysisFixture == nil {
		a, err := Run(Options{Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		analysisFixture = a
	}
	return analysisFixture
}

func TestRunDefaults(t *testing.T) {
	a := getAnalysis(t)
	if got := len(a.Regions()); got != 26 {
		t.Fatalf("regions = %d", got)
	}
}

func TestRunRejectsBadLinkage(t *testing.T) {
	if _, err := Run(Options{Scale: 0.01, Linkage: "centroid"}); err == nil {
		t.Fatal("unknown linkage accepted")
	}
}

func TestTableShape(t *testing.T) {
	a := getAnalysis(t)
	rows := a.Table()
	if len(rows) != 26 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Recipes <= 0 || r.Patterns <= 0 || len(r.Top) == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Top[0].Support <= 0 || r.Top[0].Support > 1 {
			t.Fatalf("support out of range: %+v", r.Top[0])
		}
	}
	rendered := a.RenderTable()
	if !strings.Contains(rendered, "Japanese") || !strings.Contains(rendered, "soy sauce") {
		t.Fatalf("table render:\n%s", rendered)
	}
}

func TestDendrogramsRender(t *testing.T) {
	a := getAnalysis(t)
	for _, f := range []Figure{FigureEuclidean, FigureCosine, FigureJaccard, FigureAuthenticity, FigureGeographic} {
		s, err := a.Dendrogram(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "Japanese") || !strings.Contains(s, "UK") {
			t.Fatalf("%v dendrogram missing labels:\n%s", f, s)
		}
		nw, err := a.Newick(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(nw, ";") || !strings.Contains(nw, "Thai") {
			t.Fatalf("%v newick: %q", f, nw)
		}
	}
	if _, err := a.Dendrogram(Figure(99)); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureNames(t *testing.T) {
	if FigureEuclidean.String() != "fig2-euclidean" || FigureGeographic.String() != "fig6-geographic" {
		t.Fatal("figure names wrong")
	}
	if !strings.Contains(Figure(42).String(), "42") {
		t.Fatal("unknown figure name")
	}
}

func TestCuisineDistanceSymmetric(t *testing.T) {
	a := getAnalysis(t)
	d1, err := a.CuisineDistance(FigureGeographic, "UK", "Irish")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.CuisineDistance(FigureGeographic, "Irish", "UK")
	if err != nil || d1 != d2 {
		t.Fatalf("asymmetric: %v vs %v (%v)", d1, d2, err)
	}
	if _, err := a.CuisineDistance(FigureGeographic, "UK", "Narnia"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestClosestCuisineGeographic(t *testing.T) {
	a := getAnalysis(t)
	got, err := a.ClosestCuisine(FigureGeographic, "UK")
	if err != nil {
		t.Fatal(err)
	}
	if got != "Irish" {
		t.Fatalf("closest to UK geographically = %q, want Irish", got)
	}
	if _, err := a.ClosestCuisine(FigureGeographic, "Narnia"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestClustersPartition(t *testing.T) {
	a := getAnalysis(t)
	groups, err := a.Clusters(FigureAuthenticity, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty cluster")
		}
		total += len(g)
	}
	if total != 26 {
		t.Fatalf("clusters cover %d regions", total)
	}
	if _, err := a.Clusters(FigureAuthenticity, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestStats(t *testing.T) {
	a := getAnalysis(t)
	st := a.Stats()
	if st.Regions != 26 || st.Recipes < 10000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanIngredients < 8 || st.MeanIngredients > 13 {
		t.Fatalf("mean ingredients = %v", st.MeanIngredients)
	}
}

func TestElbowReport(t *testing.T) {
	a := getAnalysis(t)
	rep := a.ElbowReport()
	if !strings.Contains(rep, "k=1") {
		t.Fatalf("elbow report:\n%s", rep)
	}
	if a.ElbowSharp() {
		t.Fatal("cuisine features should not show a sharp elbow (Fig. 1)")
	}
}

func TestCuisinePatterns(t *testing.T) {
	a := getAnalysis(t)
	ps, err := a.CuisinePatterns("Japanese")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) < 10 {
		t.Fatalf("japanese patterns = %d", len(ps))
	}
	foundSoy := false
	for _, p := range ps {
		if len(p.Items) != len(p.Kinds) {
			t.Fatal("items/kinds misaligned")
		}
		if len(p.Items) == 1 && p.Items[0] == "soy sauce" {
			foundSoy = true
			if p.Support < 0.35 {
				t.Fatalf("soy sauce support = %v", p.Support)
			}
		}
	}
	if !foundSoy {
		t.Fatal("soy sauce pattern missing")
	}
	if _, err := a.CuisinePatterns("Narnia"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestFingerprint(t *testing.T) {
	a := getAnalysis(t)
	fp, err := a.Fingerprint("Japanese", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Most) != 5 || len(fp.Least) != 5 {
		t.Fatalf("fingerprint sizes: %d/%d", len(fp.Most), len(fp.Least))
	}
	names := make([]string, 0, 5)
	for _, e := range fp.Most {
		names = append(names, e.Item)
		if e.Relative <= 0 {
			t.Fatalf("most authentic with non-positive relative: %+v", e)
		}
	}
	if !contains(names, "soy sauce") {
		t.Fatalf("soy sauce not among Japan's most authentic: %v", names)
	}
	for _, e := range fp.Least {
		if e.Relative >= 0 {
			t.Fatalf("least authentic with non-negative relative: %+v", e)
		}
	}
	if _, err := a.Fingerprint("Narnia", 3); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestSubstitutes(t *testing.T) {
	a := getAnalysis(t)
	// Chinese soy sauce frequently combines with add/heat; other bundle
	// members share that context.
	subs, err := a.Substitutes("Chinese and Mongolian", "ginger", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no substitutes found")
	}
	for i := 1; i < len(subs); i++ {
		if subs[i].Similarity > subs[i-1].Similarity {
			t.Fatal("substitutes not sorted")
		}
	}
	if _, err := a.Substitutes("Chinese and Mongolian", "unobtainium", 5); err == nil {
		t.Fatal("unknown ingredient accepted")
	}
}

func TestClaimsAndFits(t *testing.T) {
	a := getAnalysis(t)
	claims := a.Claims()
	if len(claims) != 8 {
		t.Fatalf("claims = %d", len(claims))
	}
	// At tenth scale the anecdotes must hold in at least one tree each;
	// the full-scale run reproduces all eight (EXPERIMENTS.md).
	holdsByName := map[string]bool{}
	for _, c := range claims {
		holdsByName[c.Name] = holdsByName[c.Name] || c.Holds
	}
	for _, name := range []string{"canada-closer-to-france-than-us", "india-closer-to-north-africa-than-thai"} {
		if !holdsByName[name] {
			t.Errorf("claim %s fails in every tree", name)
		}
	}
	fits := a.GeographyFits()
	if len(fits) != 4 {
		t.Fatalf("fits = %d", len(fits))
	}
	for _, f := range fits {
		if f.BakersGamma < -1 || f.BakersGamma > 1 || f.RobinsonFoulds < 0 || f.RobinsonFoulds > 1 {
			t.Fatalf("fit out of range: %+v", f)
		}
	}
	if !strings.Contains(a.RenderValidation(), "Cophenetic") {
		t.Fatal("validation render incomplete")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestRunFromCSVRoundTrip(t *testing.T) {
	// Export a corpus through the public tooling format and re-analyze it:
	// results must match the direct run.
	direct, err := Run(Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := recipedb.WriteCSV(&buf, direct.db); err != nil {
		t.Fatal(err)
	}
	loaded, err := RunFromCSV(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Regions()) != 26 {
		t.Fatalf("regions after round trip = %d", len(loaded.Regions()))
	}
	dt := direct.Table()
	lt := loaded.Table()
	for i := range dt {
		if dt[i].Region != lt[i].Region || dt[i].Patterns != lt[i].Patterns {
			t.Fatalf("row %d differs after CSV round trip:\n%+v\n%+v", i, dt[i], lt[i])
		}
	}
}

func TestRunFromJSONL(t *testing.T) {
	direct, err := Run(Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := recipedb.WriteJSONL(&buf, direct.db); err != nil {
		t.Fatal(err)
	}
	loaded, err := RunFromJSONL(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Recipes != direct.Stats().Recipes {
		t.Fatal("recipe count changed through JSONL round trip")
	}
}

func TestRunFromCSVMalformed(t *testing.T) {
	if _, err := RunFromCSV(strings.NewReader("not,a,recipe,csv\n"), Options{}); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}
