package cuisines

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The body-cap tests live in-package (unlike client_test.go) because
// they shrink the unexported response limits; they use stub HTTP
// servers, not a real cuisined, so there is no import cycle.

func TestClientRejectsOversizedResponse(t *testing.T) {
	huge := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"` + huge + `"}`))
	}))
	defer ts.Close()

	origData := maxResponseBytes
	maxResponseBytes = 1024
	defer func() { maxResponseBytes = origData }()

	var h HealthResponse
	err := NewClient(ts.URL).get(context.Background(), "/healthz", nil, &h)
	if err == nil {
		t.Fatal("oversized response accepted")
	}
	if !strings.Contains(err.Error(), "response too large") {
		t.Fatalf("error %q does not name the cause", err)
	}
}

func TestClientAcceptsResponseAtCap(t *testing.T) {
	body := []byte(`{"status":"ok","cached":1}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write(body)
	}))
	defer ts.Close()

	origData := maxResponseBytes
	maxResponseBytes = int64(len(body)) // exactly at the cap, not over
	defer func() { maxResponseBytes = origData }()

	var h HealthResponse
	if err := NewClient(ts.URL).get(context.Background(), "/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("decoded %+v", h)
	}
}

func TestClientTruncatesOversizedErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(strings.Repeat("y", 4096)))
	}))
	defer ts.Close()

	origErr := maxErrorBodyBytes
	maxErrorBodyBytes = 64
	defer func() { maxErrorBodyBytes = origErr }()

	err := NewClient(ts.URL).get(context.Background(), "/v1/table", nil, &TableResponse{})
	if err == nil {
		t.Fatal("5xx response reported as success")
	}
	// The status line carries the signal; the flood of body bytes must
	// not balloon the error.
	if len(err.Error()) > 256 {
		t.Fatalf("error message is %d bytes; oversized error body not truncated", len(err.Error()))
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("error %q lost the status", err)
	}
}
