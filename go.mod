module cuisines

go 1.24
