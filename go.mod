module cuisines

go 1.24

// golang.org/x/tools is vendored (vendor/) from the Go 1.24 toolchain's
// own cmd/vendor copy — the build environment has no network access, and
// the toolchain ships exactly the go/analysis + unitchecker subset
// cmd/cuisinelint needs. See DESIGN.md §11.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
