package cuisines

import (
	"fmt"
	"math"
	"strings"
)

// MapPoint is one cuisine's position on the 2-D cuisine map (principal
// coordinates of the authenticity features).
type MapPoint struct {
	Region string  `json:"region"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
}

// CuisineMap projects the 26 cuisines onto their top two principal
// components of the ingredient authenticity matrix — a flat "map of the
// world's cuisines" where distance approximates culinary difference.
// The returned variance fractions say how much structure the two axes
// capture.
func (a *Analysis) CuisineMap() (points []MapPoint, varianceExplained [2]float64, err error) {
	x := a.figures.AuthMat.FeatureMatrix()
	coords, eig := x.PrincipalCoordinates(2, 0)
	if coords.Cols() < 2 {
		return nil, varianceExplained, fmt.Errorf("cuisines: authenticity features have rank < 2")
	}
	total := 0.0
	for _, v := range x.ColVariances() {
		total += v
	}
	if total > 0 {
		varianceExplained[0] = eig[0] / total
		varianceExplained[1] = eig[1] / total
	}
	regions := a.figures.AuthMat.Regions
	points = make([]MapPoint, len(regions))
	for i, r := range regions {
		points[i] = MapPoint{Region: r, X: coords.At(i, 0), Y: coords.At(i, 1)}
	}
	return points, varianceExplained, nil
}

// RenderCuisineMap draws the cuisine map as an ASCII scatter plot with
// abbreviated labels and a legend.
func (a *Analysis) RenderCuisineMap(width, height int) (string, error) {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 22
	}
	points, variance, err := a.CuisineMap()
	if err != nil {
		return "", err
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	regions := make([]string, len(points))
	for i, p := range points {
		regions[i] = p.Region
	}
	abbrevs := abbreviations(regions)
	for _, p := range points {
		ab := abbrevs[p.Region]
		col := int((p.X - minX) / spanX * float64(width-len(ab)-1))
		row := int((maxY - p.Y) / spanY * float64(height-1))
		// When width is narrower than the label plus one the scale factor
		// above is negative and col with it; clamp both coordinates into
		// the grid so tiny canvases degrade to overlap instead of
		// panicking.
		col = clamp(col, 0, width-1)
		row = clamp(row, 0, height-1)
		for k := 0; k < len(ab); k++ {
			if col+k < width && grid[row][col+k] == ' ' {
				grid[row][col+k] = ab[k]
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Cuisine map (PC1 %.0f%%, PC2 %.0f%% of authenticity variance)\n",
		variance[0]*100, variance[1]*100)
	border := "+" + strings.Repeat("-", width) + "+\n"
	b.WriteString(border)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString(border)
	b.WriteString("Legend: ")
	for i, p := range points {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", abbrevs[p.Region], p.Region)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// abbreviate builds a short label from a region name ("Chinese and
// Mongolian" -> "CM", "UK" -> "UK"). level widens the label when the
// short form collides with another region's.
func abbreviate(region string, level int) string {
	words := contentWords(region)
	switch {
	case len(words) == 1:
		w := words[0]
		n := 2 + level
		if len(w) <= n {
			return strings.ToUpper(w)
		}
		return strings.ToUpper(w[:n])
	case level == 0:
		var b strings.Builder
		for _, w := range words {
			b.WriteByte(w[0])
		}
		return strings.ToUpper(b.String())
	default:
		// First letter of the first word plus a widening prefix of the
		// last ("South American" -> "SAM", "Southeast Asian" -> "SAS").
		last := words[len(words)-1]
		n := 1 + level
		if n > len(last) {
			n = len(last)
		}
		return strings.ToUpper(words[0][:1] + last[:n])
	}
}

func contentWords(region string) []string {
	var out []string
	for _, w := range strings.Fields(region) {
		if w == "and" || w == "of" {
			continue
		}
		out = append(out, w)
	}
	return out
}

// abbreviations assigns each region a unique short label, widening
// colliding labels until the set is collision-free.
func abbreviations(regions []string) map[string]string {
	out := make(map[string]string, len(regions))
	level := make(map[string]int, len(regions))
	for {
		used := make(map[string][]string)
		for _, r := range regions {
			ab := abbreviate(r, level[r])
			out[r] = ab
			used[ab] = append(used[ab], r)
		}
		collision := false
		//lint:allow mapiter collision groups are disjoint (keyed by abbreviation), so bumping each member's level commutes across visit orders
		for _, rs := range used {
			if len(rs) > 1 {
				collision = true
				for _, r := range rs {
					if level[r] < 6 {
						level[r]++
					}
				}
			}
		}
		if !collision {
			return out
		}
		// Levels are bounded, so termination is guaranteed: at max level
		// the labels include enough of the name to differ.
		allMax := true
		for _, r := range regions {
			if level[r] < 6 {
				allMax = false
			}
		}
		if allMax {
			return out
		}
	}
}
