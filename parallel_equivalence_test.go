package cuisines

import (
	"testing"
)

// TestParallelEquivalence is the enforcement of the parallel layer's core
// design constraint: a Run with Workers: 1 (the fully sequential path) and
// a Run with Workers: 8 must produce byte-identical artifacts — the same
// Table I rendering, the same Newick string for all five dendrograms, the
// same elbow report, and the same validation claims. Parallelism may only
// change how fast the answer arrives, never the answer.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	run := func(workers int) *Analysis {
		t.Helper()
		a, err := Run(Options{Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatalf("Run(Workers: %d): %v", workers, err)
		}
		return a
	}
	seq := run(1)
	par := run(8)

	if s, p := seq.RenderTable(), par.RenderTable(); s != p {
		t.Errorf("Table I differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}
	for _, f := range []Figure{FigureEuclidean, FigureCosine, FigureJaccard, FigureAuthenticity, FigureGeographic} {
		s, err := seq.Newick(f)
		if err != nil {
			t.Fatalf("sequential Newick(%v): %v", f, err)
		}
		p, err := par.Newick(f)
		if err != nil {
			t.Fatalf("parallel Newick(%v): %v", f, err)
		}
		if s != p {
			t.Errorf("%v Newick differs:\nseq: %s\npar: %s", f, s, p)
		}
	}
	if s, p := seq.ElbowReport(), par.ElbowReport(); s != p {
		t.Errorf("elbow report differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}
	sc, pc := seq.Claims(), par.Claims()
	if len(sc) != len(pc) {
		t.Fatalf("claim count differs: %d vs %d", len(sc), len(pc))
	}
	for i := range sc {
		if sc[i] != pc[i] {
			t.Errorf("claim %d differs: %+v vs %+v", i, sc[i], pc[i])
		}
	}
	if s, p := seq.RenderValidation(), par.RenderValidation(); s != p {
		t.Errorf("validation report differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestWorkersDefaultEquivalence pins the default (Workers: 0, all cores)
// to the sequential reference as well, so the everyday configuration is
// covered, not just the explicit 8-worker case.
func TestWorkersDefaultEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	seq, err := Run(Options{Scale: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if s, d := seq.RenderTable(), def.RenderTable(); s != d {
		t.Errorf("Table I differs between Workers=1 and default workers")
	}
	s, err := seq.Newick(FigureEuclidean)
	if err != nil {
		t.Fatal(err)
	}
	d, err := def.Newick(FigureEuclidean)
	if err != nil {
		t.Fatal(err)
	}
	if s != d {
		t.Errorf("Euclidean Newick differs between Workers=1 and default workers")
	}
}
