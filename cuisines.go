// Package cuisines reproduces "Hierarchical Clustering of World Cuisines"
// (Sharma et al., 2020): frequent-pattern mining of a 118k-recipe,
// 26-cuisine RecipeDB corpus, per-cuisine culinary fingerprints, and
// hierarchical clustering of the world's cuisines under pattern-based and
// authenticity-based features, validated against geography.
//
// The package is a facade over the internal pipeline. A typical session:
//
//	a, err := cuisines.Run(cuisines.Options{Scale: 0.25})
//	if err != nil { ... }
//	fmt.Println(a.RenderTable())                       // Table I
//	s, _ := a.Dendrogram(cuisines.FigureAuthenticity)  // Fig. 5
//	fmt.Println(s)
//	for _, c := range a.Claims() {                     // Sec. VII
//		fmt.Println(c.Name, c.Holds)
//	}
//
// The corpus is synthetic but calibrated: the real RecipeDB scrape is not
// redistributable, so Run generates a corpus that reproduces the paper's
// Table I (per-cuisine recipe counts, headline patterns and supports,
// pattern-count shape), the Sec. III statistics, and the cross-cuisine
// sharing structure the clustering results depend on. See DESIGN.md.
package cuisines

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"cuisines/internal/artifact"
	"cuisines/internal/core"
	"cuisines/internal/corpus"
	"cuisines/internal/distance"
	"cuisines/internal/hac"
	"cuisines/internal/miner"
	"cuisines/internal/pipeline"
	"cuisines/internal/recipedb"
)

// Options configures Run.
type Options struct {
	// Seed drives corpus generation (default: the paper's arXiv date,
	// 20200426 — the seed every number in EXPERIMENTS.md was produced
	// with).
	Seed uint64
	// Scale multiplies the Table I per-region recipe counts; 0 or 1 is
	// the full 118k corpus. Quarter scale reproduces all qualitative
	// results in a few hundred milliseconds.
	Scale float64
	// MinSupport is the pattern-mining threshold (default 0.2, Sec. IV).
	MinSupport float64
	// Linkage names the linkage method for the cosine, Jaccard,
	// authenticity and geographic trees: "single", "complete", "average"
	// (default), "weighted" or "ward". The Euclidean pattern tree always
	// uses Ward (see internal/core.EuclideanLinkage).
	Linkage string
	// Workers bounds the worker pool every parallel stage draws from:
	// per-region corpus generation, the per-cuisine mining runs, the
	// pdist row fan-outs, the Fig. 1 elbow sweep and the concurrent
	// construction of the five dendrograms. 0 (the default) means
	// runtime.GOMAXPROCS(0); 1 forces the fully sequential path. Every
	// result is byte-identical for any value — parallelism only changes
	// how fast the answer arrives, never the answer (see DESIGN.md §3).
	Workers int
	// Miner names the frequent-itemset mining backend for the
	// per-cuisine mine stage: "apriori", "eclat" or "fpgrowth" (plus
	// the "fp-growth"/"fp" spellings); empty selects the benchmark-
	// chosen default. All backends run over the shared bitset
	// transaction index and produce byte-identical pattern sets, so —
	// like Workers — the miner is a pure performance knob: it never
	// enters a cache or artifact key (see DESIGN.md §9).
	Miner string
}

// Canonical returns the Options with every default applied and the
// linkage and miner names normalized ("upgma" -> "average",
// "fp-growth" -> "fpgrowth"), rejecting unknown linkage methods and
// mining backends. Two Options describe the same analysis exactly when
// their canonical forms differ only in Workers or Miner: neither
// parallelism nor the mining backend changes the output, so the
// serving cache keys on the canonical form with both zeroed
// (DESIGN.md §7, §9).
func (o Options) Canonical() (Options, error) {
	if o.Seed == 0 {
		o.Seed = corpus.DefaultSeed
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.MinSupport <= 0 {
		o.MinSupport = core.DefaultMinSupport
	}
	if o.Linkage == "" {
		o.Linkage = core.DefaultLinkage.String()
	}
	method, err := hac.ParseMethod(o.Linkage)
	if err != nil {
		return Options{}, err
	}
	o.Linkage = method.String()
	m, err := miner.Parse(o.Miner)
	if err != nil {
		return Options{}, err
	}
	o.Miner = m.Name()
	return o, nil
}

// Figure selects one of the paper's dendrograms.
type Figure int

const (
	// FigureEuclidean is Fig. 2: pattern features, Euclidean distance.
	FigureEuclidean Figure = iota
	// FigureCosine is Fig. 3: pattern features, cosine distance.
	FigureCosine
	// FigureJaccard is Fig. 4: pattern features, Jaccard distance.
	FigureJaccard
	// FigureAuthenticity is Fig. 5: ingredient authenticity features.
	FigureAuthenticity
	// FigureGeographic is Fig. 6: great-circle distances (validation).
	FigureGeographic

	numFigures = int(FigureGeographic) + 1
)

// AllFigures lists the five dendrogram figures in paper order.
func AllFigures() []Figure {
	return []Figure{FigureEuclidean, FigureCosine, FigureJaccard, FigureAuthenticity, FigureGeographic}
}

// ParseFigure resolves a figure name: the canonical form ("fig5-authenticity")
// or either half of it ("fig5", "authenticity"). It is the inverse of
// Figure.String and the parser the HTTP API uses for {figure} path
// segments.
func ParseFigure(s string) (Figure, error) {
	for _, f := range AllFigures() {
		name := f.String()
		if s == name {
			return f, nil
		}
		if i := strings.IndexByte(name, '-'); i >= 0 && (s == name[:i] || s == name[i+1:]) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("cuisines: unknown figure %q", s)
}

// String names the figure.
func (f Figure) String() string {
	switch f {
	case FigureEuclidean:
		return "fig2-euclidean"
	case FigureCosine:
		return "fig3-cosine"
	case FigureJaccard:
		return "fig4-jaccard"
	case FigureAuthenticity:
		return "fig5-authenticity"
	case FigureGeographic:
		return "fig6-geographic"
	default:
		return fmt.Sprintf("figure(%d)", int(f))
	}
}

// Analysis holds one full run of the paper's evaluation.
//
// Accessors that derive state from the run — the cophenetic matrices,
// the region index and the corpus statistics — memoize it on first use
// (guarded by sync.Once), so an Analysis served per-request by the
// cuisined daemon answers every repeat query without recomputation and
// is safe for concurrent use.
type Analysis struct {
	db         *recipedb.DB
	figures    *core.Figures
	validation *core.Validation

	statsOnce sync.Once
	stats     recipedb.Stats

	pairingsOnce sync.Once
	pairings     []FoodPairing

	regionsOnce sync.Once
	regionIdx   map[string]int

	cophOnce [numFigures]sync.Once
	coph     [numFigures]*distance.Condensed

	// rulesMu guards the bounded association-rule memo (rules.go):
	// rule generation takes distinct parameters per call, so it
	// memoizes per parameter tuple in a small FIFO map rather than a
	// sync.Once like the derivations above.
	rulesMu    sync.Mutex
	rulesMemo  map[rulesKey][]AssociationRule
	rulesOrder []rulesKey
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// CacheDir enables the persistent artifact tier: stage outputs
	// (corpus, mined patterns, matrices, distances, trees, validation)
	// are written there and reloaded by later runs — including runs in
	// a future process, which is how a restarted daemon comes back
	// warm. Empty keeps artifacts in memory only. Corrupted, truncated
	// or version-mismatched files are silently recomputed, never fatal.
	CacheDir string
	// MaxArtifacts bounds the in-memory artifact tier (LRU); <= 0 uses
	// a default that comfortably holds several analyses worth of
	// stages.
	MaxArtifacts int
	// MaxCacheBytes bounds the CacheDir tier: after each write, the
	// least recently used artifact files are deleted until the total
	// is under the cap. <= 0 means a 4 GiB default. Analysis
	// parameters are client-controlled on the daemon, so the disk tier
	// must not grow without bound.
	MaxCacheBytes int64
}

// Engine executes analyses through the staged pipeline graph
// (DESIGN.md §8) with a shared artifact store: runs that share a graph
// prefix — same corpus and mining run, different linkage or figure —
// reuse each other's cached stage outputs instead of recomputing them.
// An Engine is safe for concurrent use; concurrent runs needing the
// same stage share exactly one computation.
type Engine struct {
	pipe *pipeline.Pipeline
}

// NewEngine builds an Engine. The zero config is valid: a private
// in-memory artifact store with default bounds.
func NewEngine(cfg EngineConfig) *Engine {
	store := artifact.NewStore(artifact.Options{
		Dir:          cfg.CacheDir,
		MaxEntries:   cfg.MaxArtifacts,
		MaxDiskBytes: cfg.MaxCacheBytes,
	})
	return &Engine{pipe: pipeline.New(store)}
}

// Run generates the calibrated corpus and executes the complete
// pipeline — per-cuisine FP-Growth, Table I significance ranking, the
// Fig. 1 elbow analysis, the five dendrograms, and the Sec. VII
// validation — reusing any stage artifacts the engine already holds.
func (e *Engine) Run(opts Options) (*Analysis, error) {
	return e.RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: the pipeline checks ctx between
// stages, so a cancelled context (a disconnected or timed-out daemon
// request) stops the run at the next stage boundary instead of
// computing an analysis nobody is waiting for. The stage in progress
// when ctx is cancelled completes and is cached — that work still
// serves the next request for the same options.
func (e *Engine) RunContext(ctx context.Context, opts Options) (*Analysis, error) {
	opts, err := opts.Canonical()
	if err != nil {
		return nil, err
	}
	method, err := hac.ParseMethod(opts.Linkage)
	if err != nil {
		return nil, err
	}
	m, err := miner.Parse(opts.Miner)
	if err != nil {
		return nil, err
	}
	res, err := e.pipe.Run(ctx, pipeline.Params{
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		MinSupport: opts.MinSupport,
		Method:     method,
		Workers:    opts.Workers,
		Miner:      m,
	})
	if err != nil {
		return nil, err
	}
	return &Analysis{db: res.DB, figures: res.Figures, validation: res.Validation}, nil
}

// RunFromCSV is RunFromCSV through the engine's artifact store.
func (e *Engine) RunFromCSV(r io.Reader, opts Options) (*Analysis, error) {
	db, err := recipedb.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return e.runOn(db, opts)
}

// RunFromJSONL is RunFromJSONL through the engine's artifact store.
func (e *Engine) RunFromJSONL(r io.Reader, opts Options) (*Analysis, error) {
	db, err := recipedb.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return e.runOn(db, opts)
}

// runOn executes the graph on an externally supplied database. The
// corpus stage is keyed by a content hash of the recipes, so the same
// dataset supplied twice shares all downstream artifacts.
func (e *Engine) runOn(db *recipedb.DB, opts Options) (*Analysis, error) {
	if opts.MinSupport <= 0 {
		opts.MinSupport = core.DefaultMinSupport
	}
	if opts.Linkage == "" {
		opts.Linkage = core.DefaultLinkage.String()
	}
	method, err := hac.ParseMethod(opts.Linkage)
	if err != nil {
		return nil, err
	}
	m, err := miner.Parse(opts.Miner)
	if err != nil {
		return nil, err
	}
	res, err := e.pipe.RunOn(context.Background(), db, pipeline.Params{
		MinSupport: opts.MinSupport,
		Method:     method,
		Workers:    opts.Workers,
		Miner:      m,
	})
	if err != nil {
		return nil, err
	}
	return &Analysis{db: res.DB, figures: res.Figures, validation: res.Validation}, nil
}

// CacheStats returns the engine's per-stage artifact cache counters,
// keyed by stage kind ("corpus", "mine", "matrices", "auth", "pdist",
// "geodist", "tree", "elbow", "validate").
func (e *Engine) CacheStats() map[string]StageCacheStats {
	stats := e.pipe.Store().Stats()
	out := make(map[string]StageCacheStats, len(stats))
	for kind, s := range stats {
		out[kind] = StageCacheStats{
			Hits:          s.Hits,
			DiskHits:      s.DiskHits,
			PeerHits:      s.PeerHits,
			Computed:      s.Computed,
			Evictions:     s.Evictions,
			InFlightJoins: s.InFlightJoins,
		}
	}
	return out
}

// CacheSummary renders the per-stage counters as one stable line per
// stage — the daemon logs it at shutdown.
func (e *Engine) CacheSummary() []string { return e.pipe.Store().Summary() }

// ArtifactStore exposes the engine's stage artifact store. The cluster
// layer (internal/cluster) attaches to it: installing a peer fetcher
// and serving its frames to peers. Library users never need it.
func (e *Engine) ArtifactStore() *artifact.Store { return e.pipe.Store() }

// Run executes the complete pipeline with a private single-run engine.
// Callers making repeated or overlapping runs should hold a shared
// Engine instead, which reuses per-stage artifacts across runs.
func Run(opts Options) (*Analysis, error) {
	return NewEngine(EngineConfig{}).Run(opts)
}

// RunFromCSV runs the pipeline on recipes read from CSV (the format
// written by `cmd/recipegen -format csv`). Options.Seed and Scale are
// ignored — the data is what the reader provides.
func RunFromCSV(r io.Reader, opts Options) (*Analysis, error) {
	return NewEngine(EngineConfig{}).RunFromCSV(r, opts)
}

// RunFromJSONL runs the pipeline on recipes read from JSON Lines (the
// format written by `cmd/recipegen -format jsonl`).
func RunFromJSONL(r io.Reader, opts Options) (*Analysis, error) {
	return NewEngine(EngineConfig{}).RunFromJSONL(r, opts)
}

// Regions returns the 26 cuisine names in canonical (sorted) order.
func (a *Analysis) Regions() []string { return a.db.Regions() }

// tree resolves a figure to its dendrogram.
func (a *Analysis) tree(f Figure) (*core.CuisineTree, error) {
	switch f {
	case FigureEuclidean:
		return a.figures.Euclidean, nil
	case FigureCosine:
		return a.figures.Cosine, nil
	case FigureJaccard:
		return a.figures.Jaccard, nil
	case FigureAuthenticity:
		return a.figures.Auth, nil
	case FigureGeographic:
		return a.figures.Geo, nil
	default:
		return nil, fmt.Errorf("cuisines: unknown figure %v", f)
	}
}

// Dendrogram renders the figure's dendrogram as ASCII art (labels, joints
// and a distance axis), the textual analogue of the paper's plots.
func (a *Analysis) Dendrogram(f Figure) (string, error) {
	t, err := a.tree(f)
	if err != nil {
		return "", err
	}
	header := fmt.Sprintf("%s (metric=%s, linkage=%s)\n", f, t.Metric, t.Linkage)
	return header + t.Tree.Render(), nil
}

// Newick serializes the figure's dendrogram in Newick format for external
// tree viewers.
func (a *Analysis) Newick(f Figure) (string, error) {
	t, err := a.tree(f)
	if err != nil {
		return "", err
	}
	return t.Tree.Newick(), nil
}

// cophenetic returns the figure's cophenetic matrix, computing it at
// most once per Analysis: building it walks the whole tree and
// allocates O(n²), far too much to repeat on every daemon request.
func (a *Analysis) cophenetic(f Figure) (*distance.Condensed, error) {
	t, err := a.tree(f)
	if err != nil {
		return nil, err
	}
	a.cophOnce[f].Do(func() { a.coph[f] = t.Tree.Cophenetic() })
	return a.coph[f], nil
}

// regionIndex resolves a region name to its index in canonical order —
// the leaf order every tree and matrix shares — via a map built once.
func (a *Analysis) regionIndex(region string) (int, error) {
	a.regionsOnce.Do(func() {
		regions := a.db.Regions()
		a.regionIdx = make(map[string]int, len(regions))
		for i, r := range regions {
			a.regionIdx[r] = i
		}
	})
	i, ok := a.regionIdx[region]
	if !ok {
		return 0, fmt.Errorf("cuisines: unknown region %q", region)
	}
	return i, nil
}

// HasRegion reports whether region is one of the corpus's cuisines. It
// resolves through the memoized region index (built once per Analysis),
// so the daemon's per-request region validation is a map lookup, not a
// scan of Regions().
func (a *Analysis) HasRegion(region string) bool {
	_, err := a.regionIndex(region)
	return err == nil
}

// CuisineDistance returns the cophenetic distance between two cuisines in
// the figure's dendrogram — the height at which they merge.
func (a *Analysis) CuisineDistance(f Figure, regionA, regionB string) (float64, error) {
	coph, err := a.cophenetic(f)
	if err != nil {
		return 0, err
	}
	ia, err := a.regionIndex(regionA)
	if err != nil {
		return 0, err
	}
	ib, err := a.regionIndex(regionB)
	if err != nil {
		return 0, err
	}
	if ia == ib {
		return 0, nil
	}
	return coph.At(ia, ib), nil
}

// ClosestCuisine returns the region merging earliest with the given one
// in the figure's dendrogram.
func (a *Analysis) ClosestCuisine(f Figure, region string) (string, error) {
	coph, err := a.cophenetic(f)
	if err != nil {
		return "", err
	}
	self, err := a.regionIndex(region)
	if err != nil {
		return "", err
	}
	j, _ := coph.ArgClosest(self)
	return a.Regions()[j], nil
}

// Clusters cuts the figure's dendrogram into k clusters and returns the
// regions grouped by cluster.
func (a *Analysis) Clusters(f Figure, k int) ([][]string, error) {
	t, err := a.tree(f)
	if err != nil {
		return nil, err
	}
	assign, err := t.Tree.CutK(k)
	if err != nil {
		return nil, err
	}
	max := 0
	for _, c := range assign {
		if c > max {
			max = c
		}
	}
	out := make([][]string, max+1)
	regions := a.Regions()
	for i, c := range assign {
		out[c] = append(out[c], regions[i])
	}
	return out, nil
}

// Stats exposes the Sec. III corpus statistics, computed on first call
// and memoized (the daemon serves it per request).
func (a *Analysis) Stats() recipedb.Stats {
	a.statsOnce.Do(func() { a.stats = recipedb.ComputeStats(a.db) })
	return a.stats
}

// ElbowReport renders the Fig. 1 elbow analysis.
func (a *Analysis) ElbowReport() string {
	var b strings.Builder
	_ = a.figures.Elbow.Render(&b)
	return b.String()
}

// ElbowSharp reports whether the WCSS curve had a pronounced elbow (the
// paper's Fig. 1 finds none).
func (a *Analysis) ElbowSharp() bool { return a.figures.Elbow.Sharp() }
