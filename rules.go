package cuisines

import (
	"encoding/json"
	"fmt"
	"math"

	"cuisines/internal/itemset"
	"cuisines/internal/rules"
)

// AssociationRule is one mined association rule of a cuisine: recipes
// containing the antecedent tend to also contain the consequent.
type AssociationRule struct {
	// Antecedent and Consequent hold item names in canonical order.
	Antecedent []string
	Consequent []string
	Support    float64
	Confidence float64
	Lift       float64
	// Conviction is +Inf for confidence-1 rules; IsPerfect reports that
	// case without the caller needing to handle infinities.
	Conviction float64
}

// ruleJSON is the wire form of AssociationRule: JSON has no +Inf, so
// perfect rules omit conviction and set perfect instead.
type ruleJSON struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift"`
	Conviction *float64 `json:"conviction,omitempty"`
	Perfect    bool     `json:"perfect,omitempty"`
}

// MarshalJSON encodes the rule, mapping the +Inf conviction of perfect
// rules to "perfect": true (JSON cannot represent infinities).
func (r AssociationRule) MarshalJSON() ([]byte, error) {
	j := ruleJSON{
		Antecedent: r.Antecedent,
		Consequent: r.Consequent,
		Support:    r.Support,
		Confidence: r.Confidence,
		Lift:       r.Lift,
	}
	if r.IsPerfect() {
		j.Perfect = true
	} else {
		j.Conviction = &r.Conviction
	}
	return json.Marshal(j)
}

// UnmarshalJSON is the inverse of MarshalJSON: "perfect": true restores
// the +Inf conviction.
func (r *AssociationRule) UnmarshalJSON(b []byte) error {
	var j ruleJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*r = AssociationRule{
		Antecedent: j.Antecedent,
		Consequent: j.Consequent,
		Support:    j.Support,
		Confidence: j.Confidence,
		Lift:       j.Lift,
	}
	switch {
	case j.Perfect:
		r.Conviction = math.Inf(1)
	case j.Conviction != nil:
		r.Conviction = *j.Conviction
	}
	return nil
}

// IsPerfect reports whether the rule held in every supporting recipe
// (confidence 1).
func (r AssociationRule) IsPerfect() bool { return math.IsInf(r.Conviction, 1) }

// String renders "soy sauce + add => heat (conf 0.92, lift 2.1)".
func (r AssociationRule) String() string {
	return fmt.Sprintf("%s => %s (conf %.2f, lift %.2f)",
		joinPlus(r.Antecedent), joinPlus(r.Consequent), r.Confidence, r.Lift)
}

func joinPlus(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " + "
		}
		out += n
	}
	return out
}

// AssociationRules derives rules from a cuisine's frequent patterns
// (Sec. II/IV's association-rule framing). minConfidence <= 0 uses 0.5;
// maxRules <= 0 returns everything.
func (a *Analysis) AssociationRules(region string, minConfidence float64, maxRules int) ([]AssociationRule, error) {
	return a.rules(region, minConfidence, maxRules, false)
}

// IngredientPairings is AssociationRules restricted to rules whose items
// are all ingredients — the food-pairing view (Jain et al., Ahn et al.)
// that motivates the paper's Sec. II.
func (a *Analysis) IngredientPairings(region string, minConfidence float64, maxRules int) ([]AssociationRule, error) {
	return a.rules(region, minConfidence, maxRules, true)
}

// rulesKey identifies one rule derivation in the Analysis memo.
type rulesKey struct {
	region          string
	minConfidence   float64
	maxRules        int
	ingredientsOnly bool
}

// rulesMemoMax bounds the per-Analysis rule memo. FIFO, not LRU, so
// insertion order alone decides eviction — deterministic, and immune to
// the map-iteration nondeterminism cuisinelint forbids in this package.
const rulesMemoMax = 64

// rules memoizes deriveRules per parameter tuple: /v1/rules, /v1/pairings
// and /v1/substitutes re-request the same handful of tuples on every
// warm hit, and generation walks every mined pattern each time. The
// returned slice is shared with the memo — callers must not mutate it
// (the serving layer only marshals).
func (a *Analysis) rules(region string, minConfidence float64, maxRules int, ingredientsOnly bool) ([]AssociationRule, error) {
	key := rulesKey{region, minConfidence, maxRules, ingredientsOnly}
	a.rulesMu.Lock()
	if out, ok := a.rulesMemo[key]; ok {
		a.rulesMu.Unlock()
		return out, nil
	}
	a.rulesMu.Unlock()

	out, err := a.deriveRules(region, minConfidence, maxRules, ingredientsOnly)
	if err != nil {
		return nil, err
	}

	a.rulesMu.Lock()
	if _, exists := a.rulesMemo[key]; !exists {
		if a.rulesMemo == nil {
			a.rulesMemo = make(map[rulesKey][]AssociationRule)
		}
		a.rulesOrder = append(a.rulesOrder, key)
		for len(a.rulesOrder) > rulesMemoMax {
			delete(a.rulesMemo, a.rulesOrder[0])
			a.rulesOrder = a.rulesOrder[1:]
		}
		a.rulesMemo[key] = out
	}
	a.rulesMu.Unlock()
	return out, nil
}

func (a *Analysis) deriveRules(region string, minConfidence float64, maxRules int, ingredientsOnly bool) ([]AssociationRule, error) {
	for _, rp := range a.figures.Mined {
		if rp.Region != region {
			continue
		}
		patterns := rp.Patterns
		if ingredientsOnly {
			patterns = nil
			for _, p := range rp.Patterns {
				if p.Items.Equal(p.Items.OfKind(itemset.Ingredient)) {
					patterns = append(patterns, p)
				}
			}
		}
		rs := rules.Generate(patterns, rules.Options{
			MinConfidence: minConfidence,
			MaxRules:      maxRules,
		})
		out := make([]AssociationRule, 0, len(rs))
		for _, r := range rs {
			out = append(out, AssociationRule{
				Antecedent: r.Antecedent.Names(),
				Consequent: r.Consequent.Names(),
				Support:    r.Support,
				Confidence: r.Confidence,
				Lift:       r.Lift,
				Conviction: r.Conviction,
			})
		}
		return out, nil
	}
	return nil, fmt.Errorf("cuisines: unknown region %q", region)
}
