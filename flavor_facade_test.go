package cuisines

import "testing"

func TestFoodPairings(t *testing.T) {
	a := getAnalysis(t)
	rows := a.FoodPairings()
	if len(rows) != 26 {
		t.Fatalf("rows = %d", len(rows))
	}
	byRegion := map[string]FoodPairing{}
	for _, r := range rows {
		byRegion[r.Region] = r
		if r.CoOccurring < 0 || r.Random < 0 {
			t.Fatalf("negative means: %+v", r)
		}
	}
	// The Jain et al. / Ahn et al. sign structure: the UK pairs
	// compound-sharing ingredients, the Indian Subcontinent pairs
	// chemically contrasting ones.
	uk, in := byRegion["UK"], byRegion["Indian Subcontinent"]
	if uk.DeltaNs <= in.DeltaNs {
		t.Fatalf("UK delta %.3f should exceed Indian delta %.3f", uk.DeltaNs, in.DeltaNs)
	}
	if uk.DeltaNs <= 0 {
		t.Fatalf("UK should be compound-positive: %+v", uk)
	}
}

// TestFoodPairingsMemoized: the flavor analysis scans the whole corpus,
// so repeated calls must reuse the first result (shared backing array).
func TestFoodPairingsMemoized(t *testing.T) {
	a := getAnalysis(t)
	r1 := a.FoodPairings()
	r2 := a.FoodPairings()
	if len(r1) == 0 || &r1[0] != &r2[0] {
		t.Fatal("FoodPairings recomputed between calls")
	}
}

func TestFoodPairingFor(t *testing.T) {
	a := getAnalysis(t)
	fp, err := a.FoodPairingFor("UK")
	if err != nil || fp.Region != "UK" {
		t.Fatalf("fp=%+v err=%v", fp, err)
	}
	if _, err := a.FoodPairingFor("Narnia"); err == nil {
		t.Fatal("unknown region accepted")
	}
}
