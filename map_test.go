package cuisines

import (
	"strings"
	"testing"
)

func TestCuisineMap(t *testing.T) {
	a := getAnalysis(t)
	points, variance, err := a.CuisineMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 26 {
		t.Fatalf("points = %d", len(points))
	}
	if variance[0] <= 0 || variance[0] > 1 || variance[1] > variance[0] {
		t.Fatalf("variance fractions = %v", variance)
	}
	// East Asian cuisines should land nearer each other than to the UK
	// on the map.
	pos := map[string][2]float64{}
	for _, p := range points {
		pos[p.Region] = [2]float64{p.X, p.Y}
	}
	d := func(a, b string) float64 {
		dx := pos[a][0] - pos[b][0]
		dy := pos[a][1] - pos[b][1]
		return dx*dx + dy*dy
	}
	if d("Japanese", "Korean") >= d("Japanese", "UK") {
		t.Fatalf("map geometry: JP-KR %.3f should be < JP-UK %.3f",
			d("Japanese", "Korean"), d("Japanese", "UK"))
	}
}

func TestRenderCuisineMap(t *testing.T) {
	a := getAnalysis(t)
	s, err := a.RenderCuisineMap(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Legend") || !strings.Contains(s, "Cuisine map") {
		t.Fatalf("render:\n%s", s)
	}
	// All 26 regions in the legend.
	if strings.Count(s, "=") < 26 {
		t.Fatalf("legend incomplete:\n%s", s)
	}
}

// TestRenderCuisineMapSmallSizes is the regression test for the
// out-of-range panic: widths smaller than a label plus one drove col
// negative. Every tiny canvas must render — degraded, never panicking.
func TestRenderCuisineMapSmallSizes(t *testing.T) {
	a := getAnalysis(t)
	for width := 1; width <= 14; width++ {
		for height := 1; height <= 5; height++ {
			s, err := a.RenderCuisineMap(width, height)
			if err != nil {
				t.Fatalf("width=%d height=%d: %v", width, height, err)
			}
			lines := strings.Split(s, "\n")
			// header + top border + height rows + bottom border + legend + "".
			if got, want := len(lines), height+5; got != want {
				t.Fatalf("width=%d height=%d: %d lines, want %d:\n%s", width, height, got, want, s)
			}
			for _, row := range lines[2 : 2+height] {
				if len(row) != width+2 {
					t.Fatalf("width=%d height=%d: row %q has width %d", width, height, row, len(row))
				}
			}
		}
	}
}

func TestAbbreviationsUnique(t *testing.T) {
	regions := []string{
		"UK", "US", "Japanese", "Chinese and Mongolian", "Spanish and Portuguese",
		"Canadian", "Caribbean", "Central American", "Mexican", "Middle Eastern",
		"South American", "Southeast Asian", "Scandinavian",
	}
	abs := abbreviations(regions)
	seen := map[string]string{}
	for r, ab := range abs {
		if ab == "" {
			t.Fatalf("empty abbreviation for %q", r)
		}
		if prev, dup := seen[ab]; dup {
			t.Fatalf("abbreviation %q shared by %q and %q", ab, r, prev)
		}
		seen[ab] = r
	}
	if abs["UK"] != "UK" {
		t.Fatalf("UK abbreviated as %q", abs["UK"])
	}
}
